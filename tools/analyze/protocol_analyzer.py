#!/usr/bin/env python3
"""gMark resource-protocol analyzer (AST-grade, libclang).

The token lint (tools/lint/determinism_lint.py) is dependency-free and
catches what a regex can see. This analyzer is its type-resolved
complement: it parses real translation units through libclang
(`clang.cindex`), so its rules see through macros, typedefs, and
cross-file declarations that no token scan can follow. The two tools
split the work — see tools/lint/README.md for the division of labor.

Rules:

  raw-charge             a call to BudgetTracker::ChargeTuples or
                         BudgetTracker::ReleaseTuples outside the RAII
                         layer (src/engine/charge.h, src/engine/budget.h).
                         Manual charge/release ordering is how the PR 5
                         lifetime-under-count bug was written; every
                         other site must hold tuples through TupleCharge.
  unchecked-status       an expression statement that discards a
                         gmark::Status or gmark::Result<T> return value.
                         Type-accurate: the check reads the call's
                         resolved type, so it works across macros and
                         aliases; `(void)` casts are deliberate discards
                         and never flagged.
  unguarded-shared-field a std::atomic member, or any member of a class
                         that also owns a Mutex, carrying neither a
                         GUARDED_BY annotation nor a `// SAFETY:`
                         comment explaining why it needs no guard.
                         Synchronization primitives themselves (Mutex,
                         CondVar, MutexLock, std:: equivalents) are
                         exempt.
  unordered-iter-ast     a range-for whose range expression's canonical
                         type is a std::unordered_{map,set,multimap,
                         multiset} — including through typedefs/aliases
                         declared in other files, which the token rule
                         cannot see. find()/end() membership tests are
                         structurally invisible to this rule (only the
                         range expression's type is inspected), so the
                         token rule's false-positive class cannot occur.
  nolint-empty-reason    a NOLINT-ANALYZE escape with no justification.

Escape hatch: `// NOLINT-ANALYZE(reason)` on the flagged line or the
line directly above suppresses every rule for that line; an empty
reason is itself a finding.

Modes:
  -p BUILD_DIR     analyze the src/ translation units listed in
                   BUILD_DIR/compile_commands.json (findings are
                   reported for files under src/ only; tests may use
                   the raw protocol to pin tracker behavior).
  FILE...          analyze the named files directly (fixture mode);
                   pass --support-dir for the fixtures' include root.

When the libclang bindings are unavailable the analyzer SKIPS: exit 0
by default (local dev boxes need not install clang), 77 under
--strict-skip (ctest's skip code), 2 under --strict (CI, where the
pinned libclang wheel is installed and absence is a job bug).

  exit 0: clean/skip   1: findings   2: error/strict-skip   77: ctest skip
"""

import argparse
import json
import os
import re
import shlex
import subprocess
import sys

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

# Path suffixes (POSIX-style) where the raw tuple-charge protocol IS
# the sanctioned implementation.
RAW_CHARGE_ALLOWED_SUFFIXES = ("engine/charge.h", "engine/budget.h")
RAW_CHARGE_METHODS = {"ChargeTuples", "ReleaseTuples"}

NOLINT_RE = re.compile(r"NOLINT-ANALYZE\(([^)]*)\)")

# Exact canonical spellings (const/ref stripped) of synchronization
# primitives: these fields ARE the guard, so they need none themselves.
SYNC_EXACT_TYPES = {
    "gmark::Mutex", "gmark::CondVar", "gmark::MutexLock",
    "std::mutex", "std::recursive_mutex", "std::shared_mutex",
    "std::condition_variable", "std::condition_variable_any",
}
SYNC_TYPE_PREFIXES = (
    "std::unique_lock<", "std::lock_guard<", "std::scoped_lock<",
)
# Exact canonical spellings that make a class "mutex-owning".
MUTEX_EXACT_TYPES = {"gmark::Mutex", "std::mutex", "std::recursive_mutex",
                     "std::shared_mutex"}

UNORDERED_TYPE_RE = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)<")
ATOMIC_TYPE_RE = re.compile(r"\bstd::atomic<")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def key(self):
        return (self.path, self.line, self.rule, self.message)

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def load_libclang():
    """(cindex module, Index) or (None, reason-string)."""
    try:
        from clang import cindex  # noqa: F401
    except ImportError as e:
        return None, f"python clang bindings not importable ({e})"
    try:
        index = cindex.Index.create()
    except Exception as e:  # LibclangError has no stable type path
        return None, f"libclang shared library unavailable ({e})"
    return (cindex, index), ""


def relpath(path):
    rel = os.path.relpath(os.path.abspath(path), REPO_ROOT)
    return rel.replace(os.sep, "/")


def strip_cvref(spelling):
    s = spelling.strip()
    for token in ("const ", "volatile "):
        while s.startswith(token):
            s = s[len(token):]
    while s.endswith("&") or s.endswith("*"):
        s = s[:-1].rstrip()
    return s


class FileLines:
    """Raw line cache for NOLINT / GUARDED_BY / SAFETY lookups."""

    def __init__(self):
        self._cache = {}

    def lines(self, path):
        if path not in self._cache:
            try:
                with open(path, encoding="utf-8", errors="replace") as f:
                    self._cache[path] = f.read().splitlines()
            except OSError:
                self._cache[path] = []
        return self._cache[path]


class Analyzer:
    """Runs every rule over parsed translation units, deduplicating
    findings across TUs (headers are visited once per includer)."""

    # Lines that terminate the upward `// SAFETY:` scan: the start of
    # the class body, an access specifier, or a blank line means the
    # comment block above no longer speaks for this field.
    SAFETY_STOP_RE = re.compile(
        r"^\s*(?:\{|\}|};|public\s*:|private\s*:|protected\s*:|struct\b"
        r"|class\b)|^\s*$")

    def __init__(self, cindex, report_file_filter):
        self.cindex = cindex
        self.ck = cindex.CursorKind
        # report_file_filter(abs_path) -> bool: whether findings in that
        # file are in scope for this invocation.
        self.in_scope = report_file_filter
        self.files = FileLines()
        self.findings = {}
        self.nolint_scanned = set()

    # -- reporting ------------------------------------------------------

    def report(self, path, line, rule, message):
        found, reason = self.nolint_reason(path, line)
        if found:
            if reason:
                return
            rule = "nolint-empty-reason"
            message = ("NOLINT-ANALYZE must carry a justification: "
                       "NOLINT-ANALYZE(<why this is safe>)")
        f = Finding(relpath(path), line, rule, message)
        self.findings[f.key()] = f

    def nolint_reason(self, path, line_no):
        lines = self.files.lines(path)
        for candidate in (line_no, line_no - 1):
            if 1 <= candidate <= len(lines):
                m = NOLINT_RE.search(lines[candidate - 1])
                if m:
                    return True, m.group(1).strip()
        return False, ""

    def scan_unused_nolints(self, path):
        """Empty-reason escapes that no rule consumed (textual pass)."""
        if path in self.nolint_scanned:
            return
        self.nolint_scanned.add(path)
        for i, raw in enumerate(self.files.lines(path), start=1):
            m = NOLINT_RE.search(raw)
            if m and not m.group(1).strip():
                f = Finding(relpath(path), i, "nolint-empty-reason",
                            "NOLINT-ANALYZE must carry a justification: "
                            "NOLINT-ANALYZE(<why this is safe>)")
                self.findings[f.key()] = f

    # -- per-TU driver --------------------------------------------------

    def analyze_tu(self, tu):
        for cursor in tu.cursor.walk_preorder():
            loc = cursor.location
            if loc.file is None:
                continue
            path = os.path.abspath(loc.file.name)
            if not self.in_scope(path):
                continue
            self.scan_unused_nolints(path)
            kind = cursor.kind
            if kind == self.ck.CALL_EXPR:
                self.check_raw_charge(cursor, path)
            elif kind == self.ck.COMPOUND_STMT:
                self.check_unchecked_status(cursor)
            elif kind in (self.ck.CLASS_DECL, self.ck.STRUCT_DECL,
                          self.ck.CLASS_TEMPLATE):
                self.check_unguarded_fields(cursor)
            elif kind == self.ck.CXX_FOR_RANGE_STMT:
                self.check_unordered_iter(cursor, path)

    # -- rule: raw-charge ----------------------------------------------

    def check_raw_charge(self, cursor, path):
        ref = cursor.referenced
        if ref is None or ref.spelling not in RAW_CHARGE_METHODS:
            return
        parent = ref.semantic_parent
        if parent is None or parent.spelling != "BudgetTracker":
            return
        rel = relpath(path)
        if rel.endswith(RAW_CHARGE_ALLOWED_SUFFIXES):
            return
        self.report(
            path, cursor.location.line, "raw-charge",
            f"raw BudgetTracker::{ref.spelling}() outside the RAII layer; "
            "hold tuples through TupleCharge / Charged<T> "
            "(src/engine/charge.h) so the release is bound to the data's "
            "lifetime")

    # -- rule: unchecked-status ----------------------------------------

    def unwrap(self, cursor):
        while cursor.kind == self.ck.UNEXPOSED_EXPR:
            children = list(cursor.get_children())
            if len(children) != 1:
                break
            cursor = children[0]
        return cursor

    def check_unchecked_status(self, compound):
        for child in compound.get_children():
            expr = self.unwrap(child)
            if expr.kind != self.ck.CALL_EXPR:
                continue
            spelling = expr.type.get_canonical().spelling
            if spelling == "gmark::Status":
                what = "gmark::Status"
            elif spelling.startswith("gmark::Result<"):
                what = spelling
            else:
                continue
            loc = expr.location
            if loc.file is None:
                continue
            path = os.path.abspath(loc.file.name)
            if not self.in_scope(path):
                continue
            self.report(
                path, loc.line, "unchecked-status",
                f"discarded {what} return value; handle it, bind it, or "
                "cast to (void) to document a deliberate discard")

    # -- rule: unguarded-shared-field ----------------------------------

    def field_type_spelling(self, field):
        return strip_cvref(field.type.get_canonical().spelling)

    def is_sync_type(self, spelling):
        return (spelling in SYNC_EXACT_TYPES
                or spelling.startswith(SYNC_TYPE_PREFIXES))

    def field_is_protected(self, field, path):
        lines = self.files.lines(path)
        start, end = field.extent.start.line, field.extent.end.line
        for i in range(start, min(end, len(lines)) + 1):
            if "GUARDED_BY" in lines[i - 1]:
                return True
        # Upward scan: a `// SAFETY:` comment block speaks for the
        # contiguous run of field declarations directly beneath it.
        i = start - 1
        while i >= 1:
            line = lines[i - 1]
            stripped = line.strip()
            if stripped.startswith("//") or stripped.startswith("*") \
                    or stripped.startswith("/*") or stripped.startswith("///"):
                if "SAFETY:" in stripped:
                    return True
                i -= 1
                continue
            if self.SAFETY_STOP_RE.match(line):
                return False
            if stripped.endswith(";") or stripped.endswith(","):
                i -= 1  # another declaration in the same run
                continue
            return False
        return False

    def check_unguarded_fields(self, class_cursor):
        if not class_cursor.is_definition():
            return
        fields = [c for c in class_cursor.get_children()
                  if c.kind == self.ck.FIELD_DECL]
        if not fields:
            return
        has_mutex = any(
            self.field_type_spelling(f) in MUTEX_EXACT_TYPES
            for f in fields)
        for field in fields:
            spelling = self.field_type_spelling(field)
            if self.is_sync_type(spelling):
                continue
            is_atomic = bool(ATOMIC_TYPE_RE.search(spelling))
            if not (is_atomic or has_mutex):
                continue
            loc = field.location
            if loc.file is None:
                continue
            path = os.path.abspath(loc.file.name)
            if not self.in_scope(path):
                continue
            if self.field_is_protected(field, path):
                continue
            why = ("std::atomic member" if is_atomic
                   else "member of a mutex-owning class")
            self.report(
                path, loc.line, "unguarded-shared-field",
                f"{why} `{field.spelling}` has neither GUARDED_BY(mu) nor "
                "a `// SAFETY:` comment stating why it needs no guard "
                "(see CONTRIBUTING.md, concurrency rules)")

    # -- rule: unordered-iter-ast --------------------------------------

    def check_unordered_iter(self, for_range, path):
        children = list(for_range.get_children())
        if not children:
            return
        body = children[-1]
        for child in children[:-1] if body.kind == self.ck.COMPOUND_STMT \
                else children:
            if child.kind == self.ck.VAR_DECL or child is body:
                continue
            spelling = child.type.get_canonical().spelling
            if UNORDERED_TYPE_RE.search(spelling):
                self.report(
                    path, for_range.location.line, "unordered-iter-ast",
                    "range-for over an unordered container (canonical "
                    f"type: {strip_cvref(spelling)}); iteration order is "
                    "a hash-seed artifact — sort first, or iterate an "
                    "ordered view")
                return


# -- translation-unit sources ----------------------------------------------


def parse_args_from_command(entry):
    """compile_commands.json entry -> clang arg list (compiler, -c, -o
    and the input file removed)."""
    if "arguments" in entry:
        argv = list(entry["arguments"])
    else:
        argv = shlex.split(entry["command"])
    out = []
    skip_next = False
    src = os.path.basename(entry["file"])
    for i, a in enumerate(argv):
        if i == 0:  # compiler
            continue
        if skip_next:
            skip_next = False
            continue
        if a in ("-c", "-pipe"):
            continue
        if a == "-o":
            skip_next = True
            continue
        if os.path.basename(a) == src:
            continue
        out.append(a)
    # Quiet: diagnostics are not this tool's output.
    out.append("-Wno-everything")
    return out


def compile_db_units(build_dir, changed_only):
    db_path = os.path.join(build_dir, "compile_commands.json")
    try:
        with open(db_path, encoding="utf-8") as f:
            entries = json.load(f)
    except OSError as e:
        print(f"protocol_analyzer: cannot read {db_path}: {e} — "
              "configure with CMake first", file=sys.stderr)
        sys.exit(2)
    wanted = None
    if changed_only:
        helper = os.path.join(REPO_ROOT, "tools", "lint", "changed_files.sh")
        proc = subprocess.run([helper], capture_output=True, text=True)
        if proc.returncode == 0:
            wanted = {os.path.abspath(os.path.join(REPO_ROOT, line))
                      for line in proc.stdout.splitlines() if line}
            print(f"protocol_analyzer: --changed-only: "
                  f"{len(wanted)} changed file(s)", file=sys.stderr)
        else:
            print("protocol_analyzer: no git base — analyzing all of src/",
                  file=sys.stderr)
    units = []
    for entry in entries:
        path = os.path.abspath(
            os.path.join(entry.get("directory", "."), entry["file"]))
        rel = relpath(path)
        if not rel.startswith("src/") or not rel.endswith(".cc"):
            continue
        if wanted is not None and path not in wanted:
            continue
        units.append((path, parse_args_from_command(entry)))
    return units


def src_scope_filter(path):
    return relpath(path).startswith("src/")


def explicit_scope_filter(files):
    wanted = {os.path.abspath(f) for f in files}
    return lambda path: path in wanted


def main(argv):
    parser = argparse.ArgumentParser(
        prog="protocol_analyzer.py",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("files", nargs="*",
                        help="files to analyze directly (fixture mode)")
    parser.add_argument("-p", dest="build_dir", metavar="BUILD_DIR",
                        help="analyze src/ TUs from "
                             "BUILD_DIR/compile_commands.json")
    parser.add_argument("--support-dir", metavar="DIR",
                        help="include root for fixture mode")
    parser.add_argument("--changed-only", action="store_true",
                        help="restrict -p mode to files reported by "
                             "tools/lint/changed_files.sh")
    parser.add_argument("--findings-out", metavar="PATH",
                        help="also write findings to PATH")
    parser.add_argument("--strict", action="store_true",
                        help="missing libclang is an error (exit 2)")
    parser.add_argument("--strict-skip", action="store_true",
                        help="missing libclang exits 77 (ctest skip)")
    args = parser.parse_args(argv[1:])

    loaded, why = load_libclang()
    if loaded is None:
        print(f"protocol_analyzer: SKIP — {why}", file=sys.stderr)
        if args.strict:
            print("protocol_analyzer: --strict: libclang is required here "
                  "(CI installs the pinned wheel)", file=sys.stderr)
            return 2
        return 77 if args.strict_skip else 0
    cindex, index = loaded

    units = []
    if args.build_dir:
        units.extend(compile_db_units(args.build_dir, args.changed_only))
        scope = src_scope_filter
    elif args.files:
        scope = explicit_scope_filter(args.files)
    else:
        parser.error("pass -p BUILD_DIR or explicit files")
    for f in args.files:
        clang_args = ["-x", "c++", "-std=c++17"]
        if args.support_dir:
            clang_args += ["-I", args.support_dir]
        units.append((os.path.abspath(f), clang_args))

    analyzer = Analyzer(cindex, scope)
    parsed = 0
    for path, clang_args in units:
        try:
            tu = index.parse(path, args=clang_args)
        except cindex.TranslationUnitLoadError as e:
            print(f"protocol_analyzer: cannot parse {relpath(path)}: {e}",
                  file=sys.stderr)
            return 2
        fatal = [d for d in tu.diagnostics if d.severity >= 4]
        if fatal:
            for d in fatal:
                print(f"protocol_analyzer: {relpath(path)}: {d.spelling}",
                      file=sys.stderr)
            return 2
        analyzer.analyze_tu(tu)
        parsed += 1

    findings = sorted(analyzer.findings.values(),
                      key=lambda f: (f.path, f.line, f.rule))
    for f in findings:
        print(f)
    if args.findings_out:
        with open(args.findings_out, "w", encoding="utf-8") as out:
            for f in findings:
                out.write(str(f) + "\n")
    label = "unit" if parsed == 1 else "units"
    if findings:
        print(f"protocol_analyzer: {len(findings)} finding(s) over "
              f"{parsed} translation {label}", file=sys.stderr)
        return 1
    print(f"protocol_analyzer: clean ({parsed} translation {label})",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
