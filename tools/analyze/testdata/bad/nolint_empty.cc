// Fixture: a NOLINT-ANALYZE escape with no justification. The empty
// escape must not suppress anything — it must itself be reported as
// nolint-empty-reason (and only that: the would-be finding is folded
// into it, mirroring the token lint's behavior).
#include "decls.h"

namespace gmark {

Status Step();

void Driver() {
  Step();  // NOLINT-ANALYZE()
}

}  // namespace gmark
