// Fixture: the raw tuple-charge protocol outside the RAII layer — the
// exact shape of the PR 5 under-count (release decoupled from the
// data's lifetime). Both calls must be flagged as raw-charge; the
// Status of ChargeTuples is consumed, so no unchecked-status rides
// along.
#include "decls.h"

namespace gmark {

unsigned long LeakyMaterialize(BudgetTracker* tracker) {
  if (!tracker->ChargeTuples(20).ok()) return 0;
  // ... build a 20-row copy, then hand the rows off ...
  tracker->ReleaseTuples(20);
  return 20;
}

}  // namespace gmark
