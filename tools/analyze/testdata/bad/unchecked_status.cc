// Fixture: expression statements that silently discard Status /
// Result<T> return values. The rule reads the call's resolved type, so
// both the plain and the templated form must be flagged.
#include "decls.h"

namespace gmark {

Status Step();
Result<int> Compute();

void Driver() {
  Step();
  Compute();
}

}  // namespace gmark
