// Fixture: the concurrent-budget-scope shape with its protection
// stripped. The shared fold state's atomics carry no SAFETY comment,
// and the failure slot sits next to a Mutex with no GUARDED_BY — the
// exact mistakes the real engine/budget.h SAFETY contracts exist to
// prevent. All three fields must be flagged.
#include "decls.h"

namespace gmark {

struct SharedFoldState {
  std::atomic<unsigned long> tuples;
  std::atomic<unsigned long> peak;
};

class BudgetScope {
 public:
  void ReportFailure(unsigned long task_index, Status status);
  Status first_failure() const;

 private:
  Mutex mu_;
  unsigned long failure_index_;
};

}  // namespace gmark
