// Fixture: shared-state fields with no stated protection. items_ is a
// plain member of a mutex-owning class with no GUARDED_BY; pending_ is
// an atomic with no SAFETY comment. Both must be flagged; the Mutex
// itself is a synchronization primitive and must not be.
#include "decls.h"

namespace gmark {

class WorkQueue {
 public:
  void Push(int value);
  int Drain();

 private:
  Mutex mu_;
  std::vector<int> items_;
  std::atomic<int> pending_;
};

}  // namespace gmark
