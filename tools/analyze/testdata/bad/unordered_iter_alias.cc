// Fixture: range-for over an unordered container behind a typedef
// declared in ANOTHER file (support/aliases.h). The token-level lint
// only resolves same-file aliases; the AST rule reads the canonical
// type and must flag this.
#include "aliases.h"

namespace gmark {

int SumValues(const NodeIndex& index) {
  int total = 0;
  for (const auto& entry : index) {
    total += entry.second;
  }
  return total;
}

}  // namespace gmark
