// Fixture: the concurrent-budget-scope shape with its protection
// stated, mirroring the real engine/budget.h — the shared fold
// counters sit under a `// SAFETY:` block naming the relaxed-RMW
// protocol, and the failure slot is GUARDED_BY the scope mutex.
#include "decls.h"

namespace gmark {

struct SharedFoldState {
  // SAFETY: multi-writer atomics — workers fetch_add(relaxed) into
  // tuples and CAS-max into peak during the fan-out; the owning scope
  // reads them exactly once, after the executor Wait() joins every
  // worker (a happens-before edge), in Fold().
  std::atomic<unsigned long> tuples;
  std::atomic<unsigned long> peak;
};

class BudgetScope {
 public:
  void ReportFailure(unsigned long task_index, Status status);
  Status first_failure() const;

 private:
  Mutex mu_;
  unsigned long failure_index_ GUARDED_BY(mu_);
};

}  // namespace gmark
