// Fixture: every sanctioned way of consuming a Status / Result<T> —
// bound to a variable, tested inline, returned, or explicitly
// discarded with (void). None may be flagged.
#include "decls.h"

namespace gmark {

Status Step();
Result<int> Compute();

int Driver() {
  Status step = Step();
  if (!step.ok()) return -1;
  if (!Step().ok()) return -1;
  Result<int> result = Compute();
  if (!result.ok()) return -1;
  (void)Step();  // Deliberate discard: documented by the cast.
  return result.ValueOrDie();
}

Status Forward() { return Step(); }

}  // namespace gmark
