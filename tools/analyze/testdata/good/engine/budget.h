// Allowlist mirror: a file whose path ends in engine/budget.h is the
// sanctioned home of the raw charge protocol (the tracker itself), so
// raw-charge must not fire here.
#ifndef GMARK_TOOLS_ANALYZE_TESTDATA_GOOD_ENGINE_BUDGET_H_
#define GMARK_TOOLS_ANALYZE_TESTDATA_GOOD_ENGINE_BUDGET_H_

#include "decls.h"

namespace gmark {

inline Status ChargeBatch(BudgetTracker* tracker, unsigned long count) {
  return tracker->ChargeTuples(count);
}

inline void ReleaseBatch(BudgetTracker* tracker, unsigned long count) {
  tracker->ReleaseTuples(count);
}

}  // namespace gmark

#endif  // GMARK_TOOLS_ANALYZE_TESTDATA_GOOD_ENGINE_BUDGET_H_
