// Allowlist mirror: a file whose path ends in engine/charge.h is the
// RAII layer itself — the one place raw ChargeTuples/ReleaseTuples
// calls are legal, because this is where they are encapsulated.
#ifndef GMARK_TOOLS_ANALYZE_TESTDATA_GOOD_ENGINE_CHARGE_H_
#define GMARK_TOOLS_ANALYZE_TESTDATA_GOOD_ENGINE_CHARGE_H_

#include "decls.h"

namespace gmark {

class ScopedCharge {
 public:
  explicit ScopedCharge(BudgetTracker* tracker) : tracker_(tracker) {}
  ~ScopedCharge() { tracker_->ReleaseTuples(count_); }

  Status Charge(unsigned long count) {
    count_ += count;
    return tracker_->ChargeTuples(count);
  }

 private:
  BudgetTracker* tracker_;
  unsigned long count_ = 0;
};

}  // namespace gmark

#endif  // GMARK_TOOLS_ANALYZE_TESTDATA_GOOD_ENGINE_CHARGE_H_
