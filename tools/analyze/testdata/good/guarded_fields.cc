// Fixture: shared-state fields with their protection stated — either a
// GUARDED_BY annotation or a `// SAFETY:` block covering the
// contiguous run of declarations beneath it. Synchronization
// primitives themselves need no cover.
#include "decls.h"

namespace gmark {

class WorkQueue {
 public:
  void Push(int value);
  int Drain();

 private:
  Mutex mu_;
  std::vector<int> items_ GUARDED_BY(mu_);
  CondVar ready_cv_;
  // SAFETY: single-writer counters — only the owning worker updates
  // them (relaxed RMW); readers run after the pool joins and tolerate
  // stale values in-flight.
  std::atomic<int> pending_;
  std::atomic<int> drained_;
};

}  // namespace gmark
