// Fixture: the token rule's historical false-positive class —
// find()/end() membership tests against unordered containers — plus an
// ordinary vector range-for. The AST rule inspects only a range-for's
// range type, so none of this can be flagged.
#include "decls.h"

namespace gmark {

bool Contains(const std::unordered_set<int>& seen, int value) {
  return seen.find(value) != seen.end();
}

int Sum(const std::vector<int>& values) {
  int total = 0;
  for (int v : values) total += v;
  return total;
}

}  // namespace gmark
