// Fixture: a justified NOLINT-ANALYZE escape suppresses the rule on
// its line, and the justification keeps it from being flagged itself.
#include "decls.h"

namespace gmark {

Status Notify();

void FireAndForget() {
  // NOLINT-ANALYZE(best-effort notification; failures are retried by the sweep)
  Notify();
}

}  // namespace gmark
