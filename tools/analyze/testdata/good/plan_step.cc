// Fixture: the plan-step executor shape (src/engine/engine_common.cc's
// EvaluateConjunctPairs caller) done right — steps iterate a vector in
// plan order (never an unordered container), every Status/Result is
// consumed, and tuples flow through the RAII charge layer only; the
// raw tracker protocol never appears outside engine/charge.h. Must
// produce zero findings.
#include "decls.h"
#include "engine/charge.h"

namespace gmark {

struct PlanStep {
  unsigned long conjunct;
  bool backward;
};

struct StepResult {
  unsigned long rows;
};

Result<StepResult> ExecuteStep(const PlanStep& step, ScopedCharge* charge);

Status ExecutePlan(const std::vector<PlanStep>& steps,
                   BudgetTracker* tracker) {
  // One scope per rule: the charge for every step's rows unwinds with
  // the scope on both the success and the budget-killed path.
  ScopedCharge charge(tracker);
  for (const PlanStep& step : steps) {
    Result<StepResult> result = ExecuteStep(step, &charge);
    if (!result.ok()) return result.status();
    Status charged = charge.Charge(result.ValueOrDie().rows);
    if (!charged.ok()) return charged;
  }
  return Status();
}

}  // namespace gmark
