// Cross-file alias for the unordered-iter-ast fixture: the alias lives
// here, the iteration lives in bad/unordered_iter_alias.cc — exactly
// the shape the token-level lint (same-file declarations only) cannot
// see and the type-resolved rule must.
#ifndef GMARK_TOOLS_ANALYZE_TESTDATA_SUPPORT_ALIASES_H_
#define GMARK_TOOLS_ANALYZE_TESTDATA_SUPPORT_ALIASES_H_

#include "decls.h"

namespace gmark {

using NodeIndex = std::unordered_map<unsigned long, int>;

}  // namespace gmark

#endif  // GMARK_TOOLS_ANALYZE_TESTDATA_SUPPORT_ALIASES_H_
