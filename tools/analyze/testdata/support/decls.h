// Hermetic declarations for the analyzer fixtures: just enough shape
// for libclang to type-resolve the constructs the rules inspect,
// without depending on a real standard library or the gMark headers.
// The canonical spellings the analyzer keys on (std::unordered_map<...>,
// std::atomic<...>, gmark::Status, gmark::BudgetTracker, gmark::Mutex)
// come out identical to the real tree's.
#ifndef GMARK_TOOLS_ANALYZE_TESTDATA_SUPPORT_DECLS_H_
#define GMARK_TOOLS_ANALYZE_TESTDATA_SUPPORT_DECLS_H_

namespace std {

template <typename A, typename B>
struct pair {
  A first;
  B second;
};

template <typename K, typename V>
class unordered_map {
 public:
  using value_type = pair<const K, V>;
  struct iterator {
    value_type& operator*();
    iterator& operator++();
    bool operator!=(const iterator& other) const;
  };
  iterator begin();
  iterator end();
  iterator find(const K& key);
  unsigned long size() const;
};

template <typename K>
class unordered_set {
 public:
  struct iterator {
    const K& operator*();
    iterator& operator++();
    bool operator!=(const iterator& other) const;
  };
  iterator begin();
  iterator end();
  iterator find(const K& key) const;
};

template <typename T>
class vector {
 public:
  T* begin();
  T* end();
  const T* begin() const;
  const T* end() const;
  void push_back(const T& value);
  unsigned long size() const;
};

template <typename T>
class atomic {
 public:
  T load() const;
  void store(T value);
};

class mutex {};
class condition_variable {};

}  // namespace std

// The annotation macro compiles away exactly like the real one
// (util/thread_annotations.h); the analyzer reads it from source text.
#define GUARDED_BY(x)

namespace gmark {

class Status {
 public:
  bool ok() const;
  bool IsResourceExhausted() const;
};

template <typename T>
class Result {
 public:
  bool ok() const;
  Status status() const;
  T& ValueOrDie();
};

class BudgetTracker {
 public:
  Status ChargeTuples(unsigned long count);
  void ReleaseTuples(unsigned long count);
  Status CheckTime();
};

class Mutex {
 public:
  void Lock();
  void Unlock();
};

class MutexLock {
 public:
  explicit MutexLock(Mutex& mu);
};

class CondVar {
 public:
  void Wait(MutexLock& lock);
  void NotifyAll();
};

}  // namespace gmark

#endif  // GMARK_TOOLS_ANALYZE_TESTDATA_SUPPORT_DECLS_H_
