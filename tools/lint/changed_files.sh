#!/usr/bin/env bash
# Shared changed-files detection for the incremental static gates
# (tools/lint/run_clang_tidy.sh and tools/analyze/protocol_analyzer.py
# --changed-only): one definition of "what changed", so the two tools
# can never disagree about the diff base.
#
# Usage: tools/lint/changed_files.sh [BASE_REF] [PATHSPEC]
#   BASE_REF   git ref to diff against (default: origin/main, falling
#              back to main). Pass "" to take the default.
#   PATHSPEC   git pathspec for the files of interest
#              (default: 'src/*.cc')
#
# Prints one path per line (repo-relative, existing files only):
# files changed vs BASE_REF plus untracked files matching PATHSPEC.
# Prints nothing and exits 3 when no git base is available — callers
# fall back to full-tree mode.

set -u

repo_root="$(cd "$(dirname "$0")/../.." && pwd)"
base_ref="${1:-}"
pathspec="${2:-src/*.cc}"

cd "$repo_root"

if ! git rev-parse --is-inside-work-tree >/dev/null 2>&1; then
  echo "changed_files: not a git work tree" >&2
  exit 3
fi
if [ -z "$base_ref" ]; then
  for candidate in origin/main main; do
    if git rev-parse --verify --quiet "$candidate" >/dev/null; then
      base_ref="$candidate"
      break
    fi
  done
fi
if [ -z "$base_ref" ]; then
  echo "changed_files: no usable base ref" >&2
  exit 3
fi

echo "changed_files: diffing against $base_ref" >&2
# Changed + untracked files matching the pathspec, still on disk.
(git diff --name-only "$base_ref" -- "$pathspec";
 git ls-files --others --exclude-standard -- "$pathspec") \
  | sort -u | while read -r f; do
      [ -f "$f" ] && echo "$f"
    done
exit 0
