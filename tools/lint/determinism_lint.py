#!/usr/bin/env python3
"""gMark determinism lint.

Bans the sources of nondeterminism that would silently break the
repo's core guarantee — generated graphs, workloads, and CSRs are
byte-identical at any thread count — before they reach a flaky
identity diff three PRs later. Dependency-free (stdlib only), fast
(one pass per file), and wired into ctest (`ctest -R lint`) and the
`lint` CMake target.

Rules (see tools/lint/README.md for the rationale of each):

  raw-rand            rand()/srand() anywhere.
  random-device       std::random_device anywhere (entropy source).
  raw-engine          std:: RNG engines (mt19937[_64], minstd_rand,
                      default_random_engine, ...) outside
                      src/util/random.{h,cc} — everything else draws
                      through RandomEngine.
  clock-read          direct clock reads (steady/system/high_resolution
                      _clock::now, gettimeofday, clock(), time(0))
                      outside src/util/timer.h — WallTimer is the
                      single clock, in src and in tests.
  unordered-iter      iteration over a std::unordered_{map,set,...}
                      declared in the same file (range-for or
                      .begin()/.end()), in src/ — unordered iteration
                      order is a hash-seed artifact and must never
                      reach serialized output or a merge order.
  rng-default-seed    RandomEngine constructed with no seed — the
                      default seed hides a missing DeriveSeed call.
  rng-underived-seed  RandomEngine seeded with an expression that is
                      neither a literal constant, a *seed* variable,
                      nor a DeriveSeed(...) derivation.
  nolint-empty-reason a NOLINT-DETERMINISM escape with no
                      justification string.

Escape hatch: `// NOLINT-DETERMINISM(reason)` on the flagged line or
the line directly above suppresses every rule for that line. The
reason is mandatory — an empty one is itself a finding.

Usage:
  determinism_lint.py [PATH...]     lint files/directories
                                    (default: <repo>/src <repo>/tests)
  exit 0: clean   exit 1: findings   exit 2: usage/IO error
"""

import os
import re
import sys

CXX_EXTENSIONS = {".h", ".hh", ".hpp", ".cc", ".cpp", ".cxx"}

# Path suffixes (POSIX-style) where the banned construct is the
# sanctioned implementation itself.
RNG_ALLOWED_SUFFIXES = ("util/random.h", "util/random.cc")
CLOCK_ALLOWED_SUFFIXES = ("util/timer.h",)

NOLINT_RE = re.compile(r"NOLINT-DETERMINISM\(([^)]*)\)")

RAW_RAND_RE = re.compile(r"\b(?:s?rand)\s*\(")
RANDOM_DEVICE_RE = re.compile(r"\brandom_device\b")
RAW_ENGINE_RE = re.compile(
    r"\bstd\s*::\s*(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine"
    r"|ranlux\w+|knuth_b|linear_congruential_engine"
    r"|mersenne_twister_engine|subtract_with_carry_engine)\b"
)
CLOCK_READ_RE = re.compile(
    r"\b(?:steady_clock|system_clock|high_resolution_clock)\s*::\s*now\s*\("
    r"|\bgettimeofday\s*\("
    r"|\bclock\s*\(\s*\)"
    r"|\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)"
)
UNORDERED_DECL_RE = re.compile(
    r"\b(?:std\s*::\s*)?unordered_(?:map|set|multimap|multiset)\s*<"
)
UNORDERED_ALIAS_RE = re.compile(
    r"\busing\s+(\w+)\s*=\s*(?:std\s*::\s*)?unordered_(?:map|set|multimap"
    r"|multiset)\s*<"
)
RANDOM_ENGINE_USE_RE = re.compile(r"\bRandomEngine\b")
# A seed expression that is visibly deterministic: a DeriveSeed
# derivation, anything mentioning "seed" (config.seed, root_seed, ...),
# or a plain integer literal.
SEED_OK_RE = re.compile(r"DeriveSeed|seed", re.IGNORECASE)
INT_LITERAL_RE = re.compile(r"^\s*(?:0[xX][0-9a-fA-F']+|[0-9][0-9']*)"
                            r"(?:[uU]?[lL]{0,2})?\s*$")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving line
    structure, so rule regexes never fire on documentation or log
    messages. NOLINT escapes are read from the raw lines instead."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                # Raw string literal: skip to its matched delimiter.
                if out and out[-1] == "R":
                    m = re.match(r'"([^()\s\\]{0,16})\(', text[i:])
                    if m:
                        end = text.find(")" + m.group(1) + '"', i)
                        if end == -1:
                            end = n - 1
                        chunk = text[i:end + len(m.group(1)) + 2]
                        out.append("".join(ch if ch == "\n" else " "
                                           for ch in chunk))
                        i += len(chunk)
                        continue
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        else:  # string or char
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(out)


def match_angle_brackets(text, start):
    """`start` indexes the '<' opening a template argument list;
    returns the index one past its matching '>', or -1."""
    depth = 0
    for i in range(start, len(text)):
        if text[i] == "<":
            depth += 1
        elif text[i] == ">":
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def match_parens(text, start):
    """`start` indexes '('; returns (index past matching ')', inner
    text) or (-1, '')."""
    depth = 0
    for i in range(start, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i + 1, text[start + 1:i]
    return -1, ""


def collect_unordered_names(clean):
    """Names of variables declared in this file with an unordered
    container type (directly or through a local using-alias)."""
    names = set()
    alias_names = set()
    for m in UNORDERED_ALIAS_RE.finditer(clean):
        alias_names.add(m.group(1))
    decl_type_res = [UNORDERED_DECL_RE]
    if alias_names:
        decl_type_res.append(
            re.compile(r"\b(?:" + "|".join(sorted(alias_names)) + r")\b"))
    for type_re in decl_type_res:
        for m in type_re.finditer(clean):
            end = m.end()
            if clean[end - 1] == "<" or (end < len(clean)
                                         and clean[end:end + 1] == "<"
                                         and type_re is not UNORDERED_DECL_RE):
                close = match_angle_brackets(clean, m.end() - 1)
                if close == -1:
                    continue
                rest = clean[close:]
            else:
                rest = clean[end:]
            dm = re.match(r"\s*(?:&|\*)?\s*(\w+)\s*[;={(\[]", rest)
            if dm and dm.group(1) not in ("const", "return", "operator"):
                names.add(dm.group(1))
    return names


def line_of(text, index):
    return text.count("\n", 0, index) + 1


def path_is_test(relpath):
    parts = relpath.split("/")
    return "tests" in parts or os.path.basename(relpath).endswith("_test.cc")


def path_has_suffix(relpath, suffixes):
    return any(relpath.endswith(s) for s in suffixes)


def nolint_reason(raw_lines, line_no):
    """The NOLINT-DETERMINISM escape covering `line_no` (1-based), as
    (found, reason)."""
    for candidate in (line_no, line_no - 1):
        if 1 <= candidate <= len(raw_lines):
            m = NOLINT_RE.search(raw_lines[candidate - 1])
            if m:
                return True, m.group(1).strip()
    return False, ""


def lint_file(path, relpath):
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as e:
        print(f"determinism_lint: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)

    raw_lines = text.splitlines()
    clean = strip_comments_and_strings(text)
    findings = []
    suppressed_nolints = set()  # line numbers whose escape was consumed

    def report(index_or_line, rule, message, by_line=False):
        line_no = index_or_line if by_line else line_of(clean, index_or_line)
        found, reason = nolint_reason(raw_lines, line_no)
        if found:
            if reason:
                suppressed_nolints.add(line_no)
                return
            findings.append(Finding(
                relpath, line_no, "nolint-empty-reason",
                "NOLINT-DETERMINISM must carry a justification: "
                "NOLINT-DETERMINISM(<why this cannot be deterministic>)"))
            return
        findings.append(Finding(relpath, line_no, rule, message))

    # --- universal bans -------------------------------------------------
    for m in RAW_RAND_RE.finditer(clean):
        report(m.start(), "raw-rand",
               "rand()/srand() is unseeded global state; draw through "
               "RandomEngine (src/util/random.h)")
    for m in RANDOM_DEVICE_RE.finditer(clean):
        report(m.start(), "random-device",
               "std::random_device is an entropy source; all gMark "
               "randomness must derive from the config seed")

    # --- raw engines outside util/random -------------------------------
    if not path_has_suffix(relpath, RNG_ALLOWED_SUFFIXES):
        for m in RAW_ENGINE_RE.finditer(clean):
            report(m.start(), "raw-engine",
                   "construct RandomEngine (src/util/random.h) instead of "
                   "a raw std:: engine, so seeding stays auditable")

    # --- clock reads outside util/timer ---------------------------------
    if not path_has_suffix(relpath, CLOCK_ALLOWED_SUFFIXES):
        for m in CLOCK_READ_RE.finditer(clean):
            report(m.start(), "clock-read",
                   "read time through WallTimer (src/util/timer.h) — one "
                   "clock for spans, benches, and budgets; never in a "
                   "merge order or output path")

    # --- unordered-container iteration (src only) -----------------------
    if not path_is_test(relpath):
        names = collect_unordered_names(clean)
        if names:
            alt = "|".join(sorted(re.escape(n) for n in names))
            range_for_re = re.compile(
                r"for\s*\([^;()]*:\s*(?:\*|&)?\s*(?:this\s*->\s*)?"
                r"(?:" + alt + r")\s*\)")
            # Only begin/rbegin: comparing find() against end() is the
            # standard membership idiom and never iterates.
            begin_re = re.compile(
                r"\b(?:" + alt + r")\s*\.\s*c?r?begin\s*\(")
            for m in range_for_re.finditer(clean):
                report(m.start(), "unordered-iter",
                       "iteration order of an unordered container is a "
                       "hash-seed artifact; sort first (or use a vector / "
                       "ordered map) before anything order-dependent")
            for m in begin_re.finditer(clean):
                report(m.start(), "unordered-iter",
                       "iterator walk over an unordered container; sort "
                       "keys first before anything order-dependent")

    # --- RandomEngine seeding discipline (production code only: tests
    # --- seed engines from fixture params, which is already
    # --- deterministic) -------------------------------------------------
    if not (path_has_suffix(relpath, RNG_ALLOWED_SUFFIXES)
            or path_is_test(relpath)):
        for m in RANDOM_ENGINE_USE_RE.finditer(clean):
            rest = clean[m.end():]
            dm = re.match(r"\s*(\w+)?\s*(\(|\{|;)", rest)
            if not dm:
                continue  # e.g. RandomEngine& parameter, RandomEngine* ...
            name, opener = dm.group(1), dm.group(2)
            if name in ("rng_", ):  # member declaration handled by type use
                continue
            if opener == ";":
                if name:  # `RandomEngine eng;` — default seed
                    report(m.start(), "rng-default-seed",
                           "RandomEngine default seed hides a missing "
                           "DeriveSeed(root, coords...) derivation")
                continue
            open_idx = m.end() + dm.start(2)
            close_idx, arg = (match_parens(clean, open_idx) if opener == "("
                              else (-1, ""))
            if opener == "{":
                # brace-init: find matching '}' crudely via parens logic
                depth, j = 0, open_idx
                while j < len(clean):
                    if clean[j] == "{":
                        depth += 1
                    elif clean[j] == "}":
                        depth -= 1
                        if depth == 0:
                            break
                    j += 1
                arg = clean[open_idx + 1:j] if j < len(clean) else ""
                close_idx = j
            if close_idx == -1:
                continue
            arg_stripped = arg.strip()
            if not name and not arg_stripped:
                continue  # `RandomEngine()` in a type context / sizeof
            if not arg_stripped:
                report(m.start(), "rng-default-seed",
                       "RandomEngine default seed hides a missing "
                       "DeriveSeed(root, coords...) derivation")
            elif not (SEED_OK_RE.search(arg_stripped)
                      or INT_LITERAL_RE.match(arg_stripped)):
                report(m.start(), "rng-underived-seed",
                       "seed expression is neither a literal, a *seed* "
                       "value, nor DeriveSeed(...) — derive task seeds "
                       "from logical coordinates (src/util/random.h)")

    # --- unconsumed-but-empty NOLINT escapes ----------------------------
    for i, raw in enumerate(raw_lines, start=1):
        m = NOLINT_RE.search(raw)
        if m and not m.group(1).strip():
            already = any(f.line == i and f.rule == "nolint-empty-reason"
                          for f in findings)
            covers_next = any(f.line == i + 1 for f in findings)
            if not already and not covers_next:
                findings.append(Finding(
                    relpath, i, "nolint-empty-reason",
                    "NOLINT-DETERMINISM must carry a justification: "
                    "NOLINT-DETERMINISM(<why this cannot be "
                    "deterministic>)"))
    return findings


def iter_files(paths):
    for p in paths:
        if os.path.isfile(p):
            yield p
        elif os.path.isdir(p):
            for root, dirs, files in os.walk(p):
                dirs[:] = sorted(d for d in dirs
                                 if d not in ("build", ".git")
                                 and not d.startswith("build-"))
                for name in sorted(files):
                    if os.path.splitext(name)[1] in CXX_EXTENSIONS:
                        yield os.path.join(root, name)
        else:
            print(f"determinism_lint: no such path: {p}", file=sys.stderr)
            sys.exit(2)


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("-")]
    if any(a in ("-h", "--help") for a in argv[1:]):
        print(__doc__)
        return 0
    repo_root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    if not args:
        args = [os.path.join(repo_root, "src"),
                os.path.join(repo_root, "tests")]
    findings = []
    checked = 0
    for path in iter_files(args):
        rel = os.path.relpath(path, repo_root).replace(os.sep, "/")
        if rel.startswith(".."):
            rel = path.replace(os.sep, "/")
        findings.extend(lint_file(path, rel))
        checked += 1
    for f in findings:
        print(f)
    label = "file" if checked == 1 else "files"
    if findings:
        print(f"determinism_lint: {len(findings)} finding(s) in "
              f"{checked} {label}", file=sys.stderr)
        return 1
    print(f"determinism_lint: clean ({checked} {label})", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
