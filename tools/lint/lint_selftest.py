#!/usr/bin/env python3
"""Self-test for determinism_lint.py over the golden fixtures in
tools/lint/testdata/.

Every file under testdata/bad/ must produce at least one finding, with
the exact rule id the fixture exercises; every file under
testdata/good/ must produce none. Run directly or via
`ctest -R lint`.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import determinism_lint  # noqa: E402

TESTDATA = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "testdata")

# fixture (relative to testdata/) -> exact set of rule ids it must hit.
EXPECTED_BAD = {
    "bad/rand_call.cc": {"raw-rand"},
    "bad/random_device.cc": {"random-device"},
    "bad/raw_engine.cc": {"raw-engine"},
    "bad/clock_read.cc": {"clock-read"},
    "bad/unordered_iter.cc": {"unordered-iter"},
    "bad/unordered_begin.cc": {"unordered-iter"},
    "bad/rng_default.cc": {"rng-default-seed"},
    "bad/rng_underived.cc": {"rng-underived-seed"},
    "bad/nolint_empty.cc": {"nolint-empty-reason"},
    "bad/tests/wallclock_test.cc": {"clock-read"},
}


def lint(rel):
    path = os.path.join(TESTDATA, rel)
    return determinism_lint.lint_file(path, rel)


def main():
    failures = []

    for rel, expected_rules in sorted(EXPECTED_BAD.items()):
        findings = lint(rel)
        got = {f.rule for f in findings}
        if not findings:
            failures.append(f"{rel}: expected {sorted(expected_rules)}, "
                            f"got no findings")
        elif got != expected_rules:
            failures.append(f"{rel}: expected rules "
                            f"{sorted(expected_rules)}, got {sorted(got)}")

    good_root = os.path.join(TESTDATA, "good")
    good_count = 0
    for root, dirs, files in os.walk(good_root):
        dirs.sort()
        for name in sorted(files):
            rel = os.path.relpath(os.path.join(root, name),
                                  TESTDATA).replace(os.sep, "/")
            findings = lint(rel)
            good_count += 1
            if findings:
                listed = "; ".join(str(f) for f in findings)
                failures.append(f"{rel}: expected clean, got: {listed}")

    # The bad fixtures must also fail through the CLI (non-zero exit),
    # and the good tree must pass through it — the exact surfaces CMake
    # and CI call.
    bad_exit = determinism_lint.main(
        ["determinism_lint.py", os.path.join(TESTDATA, "bad")])
    if bad_exit != 1:
        failures.append(f"CLI over testdata/bad: expected exit 1, "
                        f"got {bad_exit}")
    good_exit = determinism_lint.main(
        ["determinism_lint.py", good_root])
    if good_exit != 0:
        failures.append(f"CLI over testdata/good: expected exit 0, "
                        f"got {good_exit}")

    if failures:
        print("lint_selftest: FAIL", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"lint_selftest: PASS ({len(EXPECTED_BAD)} bad fixtures, "
          f"{good_count} good fixtures)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
