#!/usr/bin/env bash
# Run clang-tidy (config: .clang-tidy at the repo root) over the
# changed C++ files — or the whole of src/ when no git base is
# available — using the compilation database in the given build dir.
#
# Usage: tools/lint/run_clang_tidy.sh [BUILD_DIR] [BASE_REF]
#   BUILD_DIR  directory holding compile_commands.json (default: build)
#   BASE_REF   git ref to diff against (default: origin/main, falling
#              back to main, falling back to full-tree mode)
#
# Only .cc translation units are passed to clang-tidy: headers are
# covered through the TUs that include them, and header-filter in
# .clang-tidy keeps the diagnostics scoped to src/.

set -u

repo_root="$(cd "$(dirname "$0")/../.." && pwd)"
build_dir="${1:-$repo_root/build}"
base_ref="${2:-}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy: clang-tidy not found; skipping" >&2
  exit 0
fi
if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run_clang_tidy: $build_dir/compile_commands.json missing —" \
       "configure with CMake first (CMAKE_EXPORT_COMPILE_COMMANDS is" \
       "on by default)" >&2
  exit 2
fi

cd "$repo_root"

# Changed + untracked sources, .cc TUs only — one shared definition of
# "changed" for every incremental gate (see changed_files.sh).
files="$("$repo_root/tools/lint/changed_files.sh" "$base_ref" 'src/*.cc')" \
  || files=""
if [ -z "$files" ]; then
  echo "run_clang_tidy: no git base — checking all of src/" >&2
  files="$(find src -name '*.cc' | sort)"
fi
if [ -z "$files" ]; then
  echo "run_clang_tidy: no files to check" >&2
  exit 0
fi

count=$(echo "$files" | wc -l)
echo "run_clang_tidy: $count file(s)" >&2
status=0
for f in $files; do
  clang-tidy -p "$build_dir" --quiet "$f" || status=1
done
exit $status
