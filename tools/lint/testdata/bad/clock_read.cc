// Fixture: clock reads outside src/util/timer.h are banned.
#include <chrono>
long Stamp() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
