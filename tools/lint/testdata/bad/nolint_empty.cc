// Fixture: NOLINT-DETERMINISM with no justification is itself a
// finding.
#include <random>
int Draw() {
  std::mt19937 rng(7);  // NOLINT-DETERMINISM()
  return static_cast<int>(rng() % 10);
}
