// Fixture: C rand() is banned everywhere.
#include <cstdlib>
int Draw() {
  std::srand(42);
  return std::rand() % 10;
}
