// Fixture: entropy sources are banned everywhere.
#include <random>
unsigned Entropy() {
  std::random_device rd;
  return rd();
}
