// Fixture: raw std:: engines outside src/util/random.* are banned.
#include <random>
int Draw() {
  std::mt19937_64 rng(7);
  return static_cast<int>(rng() % 10);
}
