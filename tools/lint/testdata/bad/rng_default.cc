// Fixture: default-seeded RandomEngine hides a missing DeriveSeed.
#include "util/random.h"
int Draw() {
  gmark::RandomEngine rng;
  return static_cast<int>(rng.UniformInt(0, 9));
}
