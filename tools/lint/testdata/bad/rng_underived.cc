// Fixture: a seed that is neither a literal, a *seed* value, nor a
// DeriveSeed(...) derivation.
#include "util/random.h"
int Draw(unsigned long long ticket) {
  gmark::RandomEngine rng(ticket * 31);
  return static_cast<int>(rng.UniformInt(0, 9));
}
