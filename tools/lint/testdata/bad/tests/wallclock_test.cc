// Fixture: direct clock reads in tests make assertions flaky; use
// WallTimer (or better, a deterministic counter).
#include <chrono>
bool TookUnderASecond(long start_nanos) {
  auto now = std::chrono::high_resolution_clock::now();
  return now.time_since_epoch().count() - start_nanos < 1000000000L;
}
