// Fixture: iterator walks (begin()) over unordered containers are
// banned; find()/end() membership checks are not (see good/clean.cc).
#include <unordered_set>
int First(const int n) {
  std::unordered_set<int> seen;
  for (int i = 0; i < n; ++i) seen.insert(i);
  return seen.empty() ? 0 : *seen.begin();
}
