// Fixture: iterating an unordered container in src code is banned.
#include <string>
#include <unordered_map>
#include <vector>
std::vector<std::string> Keys(int n) {
  std::unordered_map<std::string, int> index;
  for (int i = 0; i < n; ++i) index[std::to_string(i)] = i;
  std::vector<std::string> keys;
  for (const auto& [key, value] : index) {
    keys.push_back(key);
  }
  return keys;
}
