// Fixture: deterministic code the lint must not flag — membership
// checks against unordered containers (find/end), ordered iteration,
// and words like "operand(x)" that embed banned tokens.
#include <map>
#include <string>
#include <unordered_set>
#include <vector>
int operand(int x) { return x; }
bool Seen(const std::unordered_set<int>& seen, int v) {
  return seen.find(v) != seen.end();
}
std::vector<std::string> SortedKeys(const std::map<std::string, int>& m) {
  std::vector<std::string> keys;
  for (const auto& [key, value] : m) keys.push_back(key);
  return keys;
}
