// Fixture: a justified NOLINT-DETERMINISM escape suppresses the rule.
#include <random>
unsigned MixInAslr() {
  // NOLINT-DETERMINISM(intentional entropy: salting a temp-dir name, never feeds output)
  std::random_device rd;
  return rd();
}
