// Fixture: the sanctioned RandomEngine seeding shapes.
#include "util/random.h"
int Draw(unsigned long long root, unsigned long long chunk) {
  gmark::RandomEngine from_derive(gmark::DeriveSeed(root, chunk, 2));
  gmark::RandomEngine from_literal(12345);
  unsigned long long config_seed = root;
  gmark::RandomEngine from_config(config_seed);
  return static_cast<int>(from_derive.UniformInt(0, 9) +
                          from_literal.UniformInt(0, 9) +
                          from_config.UniformInt(0, 9));
}
