// Fixture: tests may seed engines from fixture parameters — those are
// deterministic inputs, so the seeding-discipline rules skip tests.
#include "util/random.h"
int DrawFromParam(int param) {
  gmark::RandomEngine rng(param);
  return static_cast<int>(rng.UniformInt(0, 9));
}
