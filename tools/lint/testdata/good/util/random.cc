// Fixture: mirrors src/util/random.cc — the allowlisted home of the
// raw engine.
#include <random>
std::mt19937_64 MakeEngine(unsigned long long seed) {
  return std::mt19937_64(seed);
}
