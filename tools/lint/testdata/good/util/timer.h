// Fixture: mirrors src/util/timer.h — the allowlisted single clock.
#include <chrono>
inline long NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
